"""Join-family operator tests, including hypothesis vs brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpreterError
from repro.mal.operators.joins import (
    algebra_join,
    algebra_kdifference,
    algebra_kunique,
    algebra_leftfetchjoin,
    algebra_semijoin,
    algebra_tunique,
)
from repro.storage.bat import BAT, Dense


def bat(head, tail):
    return BAT(np.asarray(head), np.asarray(tail), owned_nbytes=0)


def dense_bat(tail, base=0):
    arr = np.asarray(tail)
    return BAT(Dense(base, len(arr)), arr, owned_nbytes=0)


class TestJoin:
    def test_dense_right_positional(self):
        l = bat([0, 1, 2], [2, 0, 9])       # tail -> oid into r
        r = dense_bat(["a", "b", "c"])      # oids 0..2
        out = algebra_join(None, l, r)
        assert list(out.head_values()) == [0, 1]   # 9 has no match
        assert list(out.tail_values()) == ["c", "a"]

    def test_dense_right_with_offset(self):
        l = bat([0, 1], [11, 10])
        r = dense_bat([5.0, 6.0], base=10)
        out = algebra_join(None, l, r)
        assert list(out.tail_values()) == [6.0, 5.0]

    def test_many_to_many(self):
        l = bat([0, 1], [7, 7])
        r = bat([7, 7], ["x", "y"])
        out = algebra_join(None, l, r)
        assert len(out) == 4

    def test_no_matches(self):
        l = bat([0], [1])
        r = bat([2], ["a"])
        assert len(algebra_join(None, l, r)) == 0

    def test_sources_union(self):
        l = BAT(np.array([0]), np.array([0]), owned_nbytes=0,
                sources=frozenset({("a", "x", 0)}))
        r = BAT(np.array([0]), np.array([1]), owned_nbytes=0,
                sources=frozenset({("b", "y", 0)}))
        out = algebra_join(None, l, r)
        assert out.sources == {("a", "x", 0), ("b", "y", 0)}


class TestLeftFetchJoin:
    def test_positional_fetch(self):
        l = bat([0, 1, 2], [2, 1, 0])
        r = dense_bat([10, 20, 30])
        out = algebra_leftfetchjoin(None, l, r)
        assert list(out.tail_values()) == [30, 20, 10]

    def test_out_of_range_rejected(self):
        l = bat([0], [5])
        r = dense_bat([1, 2])
        with pytest.raises(InterpreterError):
            algebra_leftfetchjoin(None, l, r)

    def test_falls_back_to_join_for_non_dense(self):
        l = bat([0, 1], [7, 8])
        r = bat([8, 7], ["x", "y"])
        out = algebra_leftfetchjoin(None, l, r)
        assert list(out.tail_values()) == ["y", "x"]


class TestSemijoinFamily:
    def test_semijoin_keeps_matching_heads(self):
        l = bat([1, 2, 3], ["a", "b", "c"])
        r = bat([2, 3, 9], [0, 0, 0])
        out = algebra_semijoin(None, l, r)
        assert list(out.head_values()) == [2, 3]
        assert out.subset_of == l.token

    def test_kdifference_is_complement(self):
        l = bat([1, 2, 3], ["a", "b", "c"])
        r = bat([2], [0])
        semi = algebra_semijoin(None, l, r)
        anti = algebra_kdifference(None, l, r)
        assert len(semi) + len(anti) == len(l)
        assert list(anti.head_values()) == [1, 3]

    def test_kunique_first_occurrence(self):
        l = bat([5, 5, 6, 5], ["a", "b", "c", "d"])
        out = algebra_kunique(None, l)
        assert list(out.head_values()) == [5, 6]
        assert list(out.tail_values()) == ["a", "c"]

    def test_tunique_sorted_distinct(self):
        l = bat([0, 1, 2], [3, 1, 3])
        out = algebra_tunique(None, l)
        assert list(out.tail_values()) == [1, 3]
        assert out.tail_sorted


@given(
    lv=st.lists(st.integers(min_value=0, max_value=8), max_size=40),
    rv=st.lists(st.integers(min_value=0, max_value=8), max_size=40),
)
@settings(max_examples=60)
def test_join_matches_bruteforce(lv, rv):
    l = bat(np.arange(len(lv)), np.asarray(lv, dtype=np.int64))
    r = bat(np.asarray(rv, dtype=np.int64), np.arange(len(rv)) * 10)
    out = algebra_join(None, l, r)
    expected = sorted(
        (i, j * 10)
        for i, x in enumerate(lv)
        for j, y in enumerate(rv)
        if x == y
    )
    got = sorted(zip(out.head_values().tolist(), out.tail_values().tolist()))
    assert got == expected


@given(
    lh=st.lists(st.integers(min_value=0, max_value=10), max_size=40),
    rh=st.lists(st.integers(min_value=0, max_value=10), max_size=40),
)
@settings(max_examples=60)
def test_semijoin_plus_kdifference_partition(lh, rh):
    l = bat(np.asarray(lh, dtype=np.int64), np.arange(len(lh)))
    r = bat(np.asarray(rh, dtype=np.int64), np.arange(len(rh)))
    semi = algebra_semijoin(None, l, r)
    anti = algebra_kdifference(None, l, r)
    assert len(semi) + len(anti) == len(l)
    rset = set(rh)
    assert all(h in rset for h in semi.head_values())
    assert all(h not in rset for h in anti.head_values())
