"""Grouping and aggregation operator tests (unit + hypothesis vs numpy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpreterError
from repro.mal.operators.groupby import (
    aggr_avg,
    aggr_avg1,
    aggr_count,
    aggr_count1,
    aggr_countdistinct,
    aggr_countdistinct1,
    aggr_max,
    aggr_max1,
    aggr_min,
    aggr_min1,
    aggr_sum,
    aggr_sum1,
    group_derive,
    group_extents,
    group_new,
)
from repro.storage.bat import BAT, Dense


def dense_bat(values):
    arr = np.asarray(values)
    return BAT(Dense(0, len(arr)), arr, owned_nbytes=0)


class TestGrouping:
    def test_group_new_assigns_dense_ids(self):
        grp = group_new(None, dense_bat(["b", "a", "b", "c"]))
        ids = grp.tail_values()
        assert ids.max() == 2
        assert ids[0] == ids[2]
        assert len(set(ids.tolist())) == 3

    def test_group_derive_refines(self):
        g1 = group_new(None, dense_bat(["x", "x", "y", "y"]))
        g2 = group_derive(None, g1, dense_bat([1, 2, 1, 1]))
        ids = g2.tail_values()
        assert ids[2] == ids[3]
        assert len(set(ids.tolist())) == 3

    def test_group_derive_misaligned(self):
        g1 = group_new(None, dense_bat([1, 2]))
        with pytest.raises(InterpreterError):
            group_derive(None, g1, dense_bat([1, 2, 3]))

    def test_extents_first_occurrence(self):
        grp = group_new(None, dense_bat(["b", "a", "b"]))
        ext = group_extents(None, grp)
        reps = dict(zip(grp.tail_values().tolist(), [0, 1, 0]))
        for gid, pos in zip(ext.head_values(), ext.tail_values()):
            assert reps[gid] == pos


class TestGroupedAggregates:
    def setup_method(self):
        self.vals = dense_bat([1.0, 2.0, 3.0, 4.0, 5.0])
        self.grp = group_new(None, dense_bat([0, 1, 0, 1, 0]))

    def agg_by_group(self):
        ids = self.grp.tail_values()
        return {g: [v for v, i in zip([1., 2., 3., 4., 5.], ids) if i == g]
                for g in set(ids.tolist())}

    def test_sum(self):
        out = aggr_sum(None, self.vals, self.grp).tail_values()
        for g, vals in self.agg_by_group().items():
            assert out[g] == sum(vals)

    def test_count(self):
        out = aggr_count(None, self.grp).tail_values()
        for g, vals in self.agg_by_group().items():
            assert out[g] == len(vals)

    def test_avg(self):
        out = aggr_avg(None, self.vals, self.grp).tail_values()
        for g, vals in self.agg_by_group().items():
            assert out[g] == pytest.approx(sum(vals) / len(vals))

    def test_min_max(self):
        mins = aggr_min(None, self.vals, self.grp).tail_values()
        maxs = aggr_max(None, self.vals, self.grp).tail_values()
        for g, vals in self.agg_by_group().items():
            assert mins[g] == min(vals)
            assert maxs[g] == max(vals)

    def test_min_max_strings(self):
        vals = dense_bat(["pear", "apple", "fig", "kiwi"])
        grp = group_new(None, dense_bat([0, 0, 1, 1]))
        mins = aggr_min(None, vals, grp).tail_values()
        maxs = aggr_max(None, vals, grp).tail_values()
        assert set(mins.tolist()) == {"apple", "fig"}
        assert set(maxs.tolist()) == {"pear", "kiwi"}

    def test_countdistinct(self):
        vals = dense_bat([7, 7, 8, 7, 9])
        grp = group_new(None, dense_bat([0, 0, 0, 1, 1]))
        out = aggr_countdistinct(None, vals, grp).tail_values()
        assert sorted(out.tolist()) == [2, 2]

    def test_misaligned_rejected(self):
        with pytest.raises(InterpreterError):
            aggr_sum(None, dense_bat([1.0]), self.grp)

    def test_int_sum_stays_integer(self):
        vals = dense_bat(np.array([1, 2, 3], dtype=np.int64))
        grp = group_new(None, dense_bat([0, 0, 1]))
        out = aggr_sum(None, vals, grp)
        assert out.tail_values().dtype == np.int64


class TestScalarAggregates:
    def test_basic(self):
        b = dense_bat([4.0, 1.0, 3.0])
        assert aggr_count1(None, b) == 3
        assert aggr_sum1(None, b) == pytest.approx(8.0)
        assert aggr_avg1(None, b) == pytest.approx(8.0 / 3)
        assert aggr_min1(None, b) == 1.0
        assert aggr_max1(None, b) == 4.0
        assert aggr_countdistinct1(None, dense_bat([1, 1, 2])) == 2

    def test_empty_inputs_are_null(self):
        empty = dense_bat(np.empty(0, dtype=np.float64))
        assert aggr_count1(None, empty) == 0
        assert aggr_sum1(None, empty) is None
        assert aggr_avg1(None, empty) is None
        assert aggr_min1(None, empty) is None
        assert aggr_max1(None, empty) is None


@given(
    keys=st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                  max_size=80),
)
@settings(max_examples=50)
def test_grouped_sum_count_match_numpy(keys):
    rng = np.random.default_rng(0)
    vals = rng.random(len(keys))
    kb = dense_bat(np.asarray(keys, dtype=np.int64))
    vb = dense_bat(vals)
    grp = group_new(None, kb)
    sums = aggr_sum(None, vb, grp).tail_values()
    counts = aggr_count(None, grp).tail_values()
    ids = grp.tail_values()
    for g in range(ids.max() + 1):
        mask = ids == g
        assert sums[g] == pytest.approx(vals[mask].sum())
        assert counts[g] == mask.sum()


@given(
    k1=st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                max_size=60),
)
@settings(max_examples=50)
def test_derive_equals_pairwise_grouping(k1):
    rng = np.random.default_rng(1)
    k2 = rng.integers(0, 3, len(k1))
    g = group_derive(None, group_new(None, dense_bat(np.asarray(k1))),
                     dense_bat(k2))
    ids = g.tail_values()
    pair_to_id = {}
    for (a, b), gid in zip(zip(k1, k2.tolist()), ids.tolist()):
        if (a, b) in pair_to_id:
            assert pair_to_id[(a, b)] == gid
        else:
            pair_to_id[(a, b)] = gid
    assert len(set(pair_to_id.values())) == len(pair_to_id)
