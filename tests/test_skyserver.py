"""SkyServer workload tests: catalogue, templates, log mix, micro-bench."""

import pytest

from repro.workloads.skyserver import (
    SkyQueryLog,
    build_range_template,
    combined_subsumption_batch,
)
from repro.workloads.skyserver.generator import DOC_NAMES, RA_RANGE
from repro.core.subsumption import Range, covers

class TestGenerator:
    def test_row_counts(self, sky_db):
        assert sky_db.catalog.table("photoobj").nrows == 20_000
        assert sky_db.catalog.table("dbobjects").nrows == len(DOC_NAMES)
        spec = sky_db.catalog.table("elredshift")
        assert 0 < spec.nrows < 20_000

    def test_positions_in_patch(self, sky_db):
        p = sky_db.catalog.table("photoobj")
        ra = p.column_array("ra")
        dec = p.column_array("dec")
        assert ra.min() >= RA_RANGE[0] and ra.max() <= RA_RANGE[1]
        assert dec.min() >= -5.0 and dec.max() <= 65.0

    def test_spec_ids_join_photoobj(self, sky_db):
        p = sky_db.catalog.table("photoobj")
        e = sky_db.catalog.table("elredshift")
        photo_spec = set(p.column_array("specobjid").tolist()) - {0}
        assert set(e.column_array("specobjid").tolist()) <= photo_spec

class TestTemplates:
    def test_nearby_results_within_radius(self, sky_db):
        params = {"ra": 200.0, "dec": 30.0, "r": 2.0}
        r = sky_db.run_template("sky_nearby", params)
        if len(r.value):
            assert r.value.column("dist2")[0] <= 4.0

    def test_nearby_matches_numpy(self, sky_db):
        # Count (without LIMIT) cross-check through a modified template.
        q = sky_db.builder("nearby_count")
        ra, dec, rad = q.param("ra"), q.param("dec"), q.param("r")
        ra_lo = q.scalar_op("calc.sub", ra, rad)
        ra_hi = q.scalar_op("calc.add", ra, rad)
        dec_lo = q.scalar_op("calc.sub", dec, rad)
        dec_hi = q.scalar_op("calc.add", dec, rad)
        r2 = q.scalar_op("calc.mul", rad, rad)
        q.scan("photoobj", "p")
        q.filter_eq("p", "mode", 1)
        q.filter_range("p", "ra", lo=ra_lo, hi=ra_hi)
        q.filter_range("p", "dec", lo=dec_lo, hi=dec_hi)
        ra_c, dec_c = q.col("p", "ra"), q.col("p", "dec")
        d_ra, d_dec = q.sub(ra_c, ra), q.sub(dec_c, dec)
        dist2 = q.add(q.mul(d_ra, d_ra), q.mul(d_dec, d_dec))
        q.filter_expr(q.cmp("le", dist2, r2))
        q.select_scalar("n", q.agg_scalar("count"))
        sky_db.register_template(q.build())
        params = {"ra": 200.0, "dec": 30.0, "r": 3.0}
        got = sky_db.run_template("nearby_count", params).value.scalar()
        p = sky_db.catalog.table("photoobj")
        ra_v = p.column_array("ra")
        dec_v = p.column_array("dec")
        mode = p.column_array("mode")
        d2 = (ra_v - 200.0) ** 2 + (dec_v - 30.0) ** 2
        assert got == int(((mode == 1) & (d2 <= 9.0)).sum())

    def test_doc_lookup(self, sky_db):
        r = sky_db.run_template("sky_doc", {"name": "PhotoPrimary"})
        assert len(r.value) == 1
        assert "PhotoPrimary" in r.value.column("description")[0]

    def test_point_query(self, sky_db):
        sid = int(
            sky_db.catalog.table("elredshift").column_array("specobjid")[0]
        )
        r = sky_db.run_template("sky_point", {"specobjid": sid})
        assert len(r.value) >= 1
        assert r.value.column("specobjid")[0] == sid

class TestQueryLog:
    def test_mix_proportions(self, sky_db):
        spec = sky_db.catalog.table("elredshift").column_array("specobjid")
        log = SkyQueryLog(spec, seed=1)
        batch = log.sample(2000)
        from collections import Counter

        mix = Counter(q.template for q in batch)
        assert 0.55 < mix["sky_nearby"] / 2000 < 0.70
        assert 0.28 < mix["sky_doc"] / 2000 < 0.44
        assert mix["sky_point"] / 2000 < 0.06

    def test_spatial_params_from_overlapping_sets(self, sky_db):
        spec = sky_db.catalog.table("elredshift").column_array("specobjid")
        log = SkyQueryLog(spec, seed=1, subsumable_fraction=0.0)
        params = {
            (q.params["ra"], q.params["dec"], q.params["r"])
            for q in log.sample(500) if q.template == "sky_nearby"
        }
        assert params <= set(log.centers)

    def test_batch_runs_with_high_hit_ratio(self, sky_db):
        spec = sky_db.catalog.table("elredshift").column_array("specobjid")
        log = SkyQueryLog(spec, seed=2)
        hits = marked = 0
        for qi in log.sample(60):
            r = sky_db.run_template(qi.template, qi.params)
            hits += r.stats.hits
            marked += r.stats.n_marked
        assert hits / marked > 0.5

class TestCombinedSubsumptionBatch:
    def test_geometry_no_single_cover(self):
        for k in (2, 4):
            batch = combined_subsumption_batch(5, k, seed=3)
            per_seed = k + 1
            for i in range(5):
                block = batch[i * per_seed:(i + 1) * per_seed]
                seed_q = block[-1]
                assert seed_q.is_seed
                target = Range(seed_q.lo, seed_q.hi)
                union_lo = min(b.lo for b in block[:-1])
                union_hi = max(b.hi for b in block[:-1])
                # No covering query alone covers the seed...
                for b in block[:-1]:
                    assert not covers(Range(b.lo, b.hi), target)
                # ...but their union does.
                assert covers(Range(union_lo, union_hi), target)

    def test_k_below_two_rejected(self):
        with pytest.raises(ValueError):
            combined_subsumption_batch(1, 1)

    def test_batch_triggers_combined_subsumption(self, sky_db):
        build_range_template(sky_db)
        batch = combined_subsumption_batch(6, 2, seed=4)
        ra = sky_db.catalog.table("photoobj").column_array("ra")
        for rq in batch:
            r = sky_db.run_template("sky_range", {"lo": rq.lo, "hi": rq.hi})
            expected = int(((ra >= rq.lo) & (ra <= rq.hi)).sum())
            assert r.value.scalar() == expected
        assert sky_db.recycler.totals.combined_hits >= 4
