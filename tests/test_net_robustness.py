"""Protocol robustness: malformed wire input must produce typed ERROR
frames (or a clean close) — never a server crash or hang.  Includes a
seeded fuzz loop over random frame corruption."""

from __future__ import annotations

import random
import socket
import struct

import pytest

import repro
from repro.net.protocol import (
    PROTOCOL_VERSION,
    encode_frame,
    recv_message,
    send_message,
)
from repro.net.server import serve_in_thread


@pytest.fixture(scope="module")
def served():
    db = repro.Database()
    db.create_table("t", {"x": "int64"}, {"x": range(500)})
    handle = serve_in_thread(db, max_frame=1 << 20)
    yield handle
    handle.shutdown()
    db.close()


def raw_conn(handle, do_hello=True) -> socket.socket:
    sock = socket.create_connection((handle.host, handle.port), timeout=5)
    if do_hello:
        send_message(sock, {"type": "hello", "version": PROTOCOL_VERSION,
                            "codecs": ["json"]})
        reply = recv_message(sock)
        assert reply["type"] == "welcome"
    return sock


def server_is_healthy(handle) -> None:
    """The liveness probe after every abuse: a clean query round-trip."""
    with repro.connect(url=handle.url) as conn:
        cur = conn.cursor()
        cur.execute("select count(*) from t")
        assert cur.fetchone() == (500,)


def expect_error_or_close(sock: socket.socket, match: str = "") -> None:
    """The server must answer with an ERROR frame or close the socket —
    anything else (a hang, a non-error frame) fails the test."""
    try:
        reply = recv_message(sock)
    except (ConnectionError, socket.timeout, OSError):
        return                              # clean close: acceptable
    assert reply["type"] == "error", reply
    if match:
        assert match in reply["message"]


class TestMalformedFrames:
    def test_garbage_bytes_get_an_error(self, served):
        sock = raw_conn(served)
        sock.sendall(b"\xde\xad\xbe\xef" * 3)
        expect_error_or_close(sock)
        sock.close()
        server_is_healthy(served)

    def test_http_request_is_rejected(self, served):
        # A browser poking the port: the "length" decodes huge or tiny.
        sock = socket.create_connection((served.host, served.port),
                                        timeout=5)
        sock.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        expect_error_or_close(sock)
        sock.close()
        server_is_healthy(served)

    def test_truncated_frame_then_eof(self, served):
        sock = raw_conn(served)
        frame = encode_frame({"type": "stats"})
        sock.sendall(frame[: len(frame) // 2])
        sock.close()                        # die mid-frame
        server_is_healthy(served)

    def test_truncated_header_then_eof(self, served):
        sock = raw_conn(served)
        sock.sendall(b"\x00\x00")
        sock.close()
        server_is_healthy(served)

    def test_oversized_frame_announcement_rejected(self, served):
        sock = raw_conn(served)
        # Announce a 512 MiB frame; the server must refuse before
        # reading (far beyond its 1 MiB limit), not buffer it.
        sock.sendall(struct.pack("!I", 512 << 20))
        expect_error_or_close(sock, match="refusing")
        sock.close()
        server_is_healthy(served)

    def test_zero_length_frame_rejected(self, served):
        sock = raw_conn(served)
        sock.sendall(struct.pack("!I", 0))
        expect_error_or_close(sock)
        sock.close()
        server_is_healthy(served)

    def test_unknown_codec_byte_rejected(self, served):
        sock = raw_conn(served)
        sock.sendall(struct.pack("!I", 3) + bytes([9]) + b"{}")
        expect_error_or_close(sock)
        sock.close()
        server_is_healthy(served)


class TestBadMessages:
    def test_unknown_message_type(self, served):
        sock = raw_conn(served)
        send_message(sock, {"type": "frobnicate"})
        expect_error_or_close(sock)
        sock.close()
        server_is_healthy(served)

    def test_server_side_type_from_client(self, served):
        sock = raw_conn(served)
        send_message(sock, {"type": "welcome", "version": 1})
        expect_error_or_close(sock, match="not valid")
        sock.close()
        server_is_healthy(served)

    def test_execute_without_sql_or_name(self, served):
        sock = raw_conn(served)
        send_message(sock, {"type": "execute", "params": [1]})
        expect_error_or_close(sock, match="execute needs")
        sock.close()
        server_is_healthy(served)

    def test_prepare_without_name(self, served):
        sock = raw_conn(served)
        send_message(sock, {"type": "prepare", "sql": "select 1"})
        expect_error_or_close(sock, match="prepare needs")
        sock.close()
        server_is_healthy(served)

    def test_fetch_unknown_result_id(self, served):
        sock = raw_conn(served)
        send_message(sock, {"type": "fetch", "result_id": 999})
        expect_error_or_close(sock, match="no fetchable")
        sock.close()
        server_is_healthy(served)

    def test_no_hello_first(self, served):
        sock = raw_conn(served, do_hello=False)
        send_message(sock, {"type": "execute",
                            "sql": "select count(*) from t"})
        expect_error_or_close(sock, match="hello")
        sock.close()
        server_is_healthy(served)

    def test_wrong_protocol_version(self, served):
        sock = raw_conn(served, do_hello=False)
        send_message(sock, {"type": "hello", "version": 999,
                            "codecs": ["json"]})
        expect_error_or_close(sock, match="version")
        sock.close()
        server_is_healthy(served)


class TestFuzzedFrames:
    def test_random_frame_corruption_never_kills_the_server(self, served):
        """Flip random bytes in valid frames; after every attempt the
        server must still serve a clean connection."""
        rng = random.Random(0xC0FFEE)
        base = encode_frame({
            "type": "execute",
            "sql": "select count(*) from t where x >= ?",
            "params": [10],
        })
        for attempt in range(25):
            corrupted = bytearray(base)
            for _ in range(rng.randint(1, 6)):
                corrupted[rng.randrange(len(corrupted))] = \
                    rng.randrange(256)
            sock = raw_conn(served)
            sock.settimeout(5)
            try:
                sock.sendall(bytes(corrupted))
                # Three legal outcomes: a typed frame (error *or* a
                # still-valid execute's result), a clean close, or the
                # server waiting for the rest of a longer frame the
                # corrupt header announced (we just hang up on it).
                try:
                    reply = recv_message(sock)
                    assert reply["type"] in ("error", "result"), reply
                except (ConnectionError, socket.timeout, OSError):
                    pass
            finally:
                sock.close()
            if attempt % 5 == 0:
                server_is_healthy(served)
        server_is_healthy(served)

    def test_random_garbage_connections(self, served):
        rng = random.Random(1234)
        for _ in range(10):
            sock = socket.create_connection(
                (served.host, served.port), timeout=5)
            sock.settimeout(5)
            try:
                blob = bytes(rng.randrange(256)
                             for _ in range(rng.randint(1, 200)))
                sock.sendall(blob)
                try:
                    recv_message(sock)
                except Exception:
                    pass
            finally:
                sock.close()
        server_is_healthy(served)

    def test_sessions_do_not_leak_across_abuse(self, served):
        import time

        deadline = time.time() + 10
        while time.time() < deadline:
            if served.server.manager.session_count == 0:
                break
            time.sleep(0.05)
        assert served.server.manager.session_count == 0
