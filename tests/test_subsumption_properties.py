"""Property tests for §5 subsumption against brute-force references.

For randomly generated ranges (mixed open/closed bounds, unbounded ends,
empty and point ranges) the algebraic predicates — ``covers``,
``connects``, ``merge``, ``find_combined_cover`` +
``split_target_into_segments``, ``like_subsumes`` — must agree with a
brute-force membership filter over a dense sample grid.  Bounds are drawn
from integers, and the grid includes half-points, so interval membership
can only change at sampled values: agreement on the grid is agreement
everywhere.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass

import numpy as np

from repro.core.subsumption import (
    Range,
    connects,
    covers,
    find_combined_cover,
    like_subsumes,
    merge,
    split_target_into_segments,
)

#: Every point where membership of a [0, 10]-integer-bounded range can
#: change, plus the surrounding open country.
GRID = [x / 2 for x in range(-4, 26)]


def contains(rng: Range, x) -> bool:
    """Brute-force range membership."""
    if rng.lo is not None:
        if x < rng.lo or (x == rng.lo and not rng.lo_incl):
            return False
    if rng.hi is not None:
        if x > rng.hi or (x == rng.hi and not rng.hi_incl):
            return False
    return True


def random_range(rng: np.random.Generator) -> Range:
    lo = None if rng.random() < 0.15 else int(rng.integers(0, 11))
    hi = None if rng.random() < 0.15 else int(rng.integers(0, 11))
    return Range(lo, hi, bool(rng.random() < 0.5), bool(rng.random() < 0.5))


def members(rng_: Range) -> set:
    return {x for x in GRID if contains(rng_, x)}


# ---------------------------------------------------------------------------
# covers / connects / merge
# ---------------------------------------------------------------------------
def test_covers_equals_brute_force_subset():
    rng = np.random.default_rng(4)
    checked_both_ways = 0
    for _ in range(3000):
        outer, inner = random_range(rng), random_range(rng)
        subset = members(inner) <= members(outer)
        if covers(outer, inner):
            assert subset, (outer, inner)
        elif subset and members(inner):
            # covers() may only miss subsets through *empty* inners (it
            # reasons on bounds, not emptiness) — a false negative there
            # costs a recomputation, never a wrong result.
            assert not members(inner), (outer, inner)
        else:
            checked_both_ways += 1
    assert checked_both_ways > 0


def test_covers_empty_inner_edge_cases():
    # Empty inner ranges (lo > hi, or open point): covers() answers from
    # bounds only; both answers are safe, but it must not crash.
    empty = Range(5, 3, True, True)
    open_point = Range(4, 4, True, False)
    wide = Range(0, 10, True, True)
    assert not members(empty) and not members(open_point)
    covers(wide, empty)
    covers(wide, open_point)
    assert covers(wide, Range(4, 4, True, True))


def test_point_and_unbounded_covers():
    everything = Range(None, None)
    rng = np.random.default_rng(11)
    for _ in range(200):
        r = random_range(rng)
        assert covers(everything, r)
        if r.lo is not None and contains(r, r.lo):
            assert covers(r, Range.point(r.lo))


def test_connects_and_merge_against_brute_force():
    rng = np.random.default_rng(7)
    for _ in range(2000):
        a, b = random_range(rng), random_range(rng)
        ma, mb = members(a), members(b)
        if not ma or not mb:
            continue
        union = ma | mb
        contiguous = all(
            x in union for x in GRID if min(union) <= x <= max(union)
        )
        if connects(a, b):
            m = merge(a, b)
            # The merged interval must hold exactly the union when that
            # union is one interval (which connectivity guarantees for
            # non-empty, grid-bounded ranges).
            assert contiguous
            assert members(m) == union, (a, b, m)
        else:
            # Separated ranges have a gap on the grid.
            assert not contiguous or ma <= mb or mb <= ma, (a, b)


# ---------------------------------------------------------------------------
# Combined subsumption (Algorithm 2)
# ---------------------------------------------------------------------------
@dataclass
class _FakeEntry:
    """The slice of RecycleEntry that Algorithm 2 reads."""

    tuples: int


def pieces_from(rng: np.random.Generator, n: int):
    return [
        (r, _FakeEntry(tuples=int(rng.integers(1, 100))))
        for r in (random_range(rng) for _ in range(n))
    ]


def test_combined_cover_is_correct_cover():
    """Whenever Algorithm 2 picks pieces, the split segments reproduce the
    target exactly: every target point in exactly one segment, every
    segment inside both its piece and the target."""
    rng = np.random.default_rng(15)
    found = 0
    for _ in range(1500):
        target = random_range(rng)
        if not members(target):
            continue
        pieces = pieces_from(rng, int(rng.integers(1, 7)))
        chosen = find_combined_cover(target, pieces, base_cost=1e9)
        if chosen is None:
            continue
        found += 1
        segments = split_target_into_segments(target, chosen)
        for x in GRID:
            in_target = contains(target, x)
            holders = [seg for seg, _e in segments if contains(seg, x)]
            assert len(holders) == (1 if in_target else 0), (
                target, chosen, segments, x
            )
        for seg, entry in segments:
            piece_rng = next(r for r, e in chosen if e is entry)
            assert members(seg) <= members(piece_rng), (seg, piece_rng)
            assert members(seg) <= members(target), (seg, target)
    assert found > 50  # the property must actually have been exercised


def test_combined_cover_respects_cost_bound():
    """A cover is only returned when its piece cost beats the base cost."""
    rng = np.random.default_rng(19)
    for _ in range(500):
        target = random_range(rng)
        pieces = pieces_from(rng, 5)
        base = float(rng.integers(1, 150))
        chosen = find_combined_cover(target, pieces, base_cost=base)
        if chosen is not None:
            assert sum(e.tuples for _r, e in chosen) < base


def test_combined_cover_empty_and_disconnected():
    assert find_combined_cover(Range(0, 10), [], base_cost=1e9) is None
    # Two pieces with a gap over the middle of the target: no cover.
    pieces = [
        (Range(0, 3), _FakeEntry(5)),
        (Range(7, 10), _FakeEntry(5)),
    ]
    assert find_combined_cover(Range(0, 10), pieces, base_cost=1e9) is None


def test_combined_cover_prefers_cheap_pieces():
    target = Range(0, 10)
    cheap = (Range(0, 6), _FakeEntry(5))
    cheap2 = (Range(5, 10), _FakeEntry(5))
    dear = (Range(0, 10, False, True), _FakeEntry(500))
    chosen = find_combined_cover(target, [dear, cheap, cheap2],
                                 base_cost=1e9)
    assert chosen is not None
    assert {id(e) for _r, e in chosen} == {id(cheap[1]), id(cheap2[1])}


# ---------------------------------------------------------------------------
# LIKE subsumption
# ---------------------------------------------------------------------------
def _like_match(pattern: str, s: str) -> bool:
    translated = pattern.replace("%", "*").replace("_", "?")
    return fnmatch.fnmatchcase(s, translated)


def _instances(rng: np.random.Generator, pattern: str, alphabet="abc"):
    """Random strings drawn from L(pattern): wildcards filled randomly."""
    out = []
    for _ in range(8):
        s = []
        for ch in pattern:
            if ch == "%":
                s.append("".join(
                    rng.choice(list(alphabet))
                    for _ in range(int(rng.integers(0, 4)))
                ))
            elif ch == "_":
                s.append(str(rng.choice(list(alphabet))))
            else:
                s.append(ch)
        out.append("".join(s))
    return out


def random_pattern(rng: np.random.Generator) -> str:
    parts = []
    for _ in range(int(rng.integers(1, 4))):
        kind = int(rng.integers(0, 3))
        if kind == 0:
            parts.append("%")
        elif kind == 1:
            parts.append("_")
        else:
            parts.append("".join(
                rng.choice(list("abc"))
                for _ in range(int(rng.integers(1, 3)))
            ))
    return "".join(parts)


def test_like_subsumes_soundness():
    """like_subsumes(g, s) must imply L(s) ⊆ L(g) — checked on samples."""
    rng = np.random.default_rng(23)
    positives = 0
    for _ in range(2000):
        general, specific = random_pattern(rng), random_pattern(rng)
        if not like_subsumes(general, specific):
            continue
        positives += 1
        for s in _instances(rng, specific):
            assert _like_match(specific, s)
            assert _like_match(general, s), (general, specific, s)
    assert positives > 20


def test_like_prefix_cases():
    assert like_subsumes("ab%", "abc%")
    assert like_subsumes("ab%", "ab")
    assert not like_subsumes("ab%", "a%")
    assert like_subsumes("%", "a_b%")
    assert like_subsumes("%ab", "xab")
    assert not like_subsumes("%ab", "ab%")
    assert like_subsumes("%ab%", "xaby")
    assert not like_subsumes("ab", "ab%")
