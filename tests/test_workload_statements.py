"""Parameterized workload statements (TPC-H + SkyServer, DB-API path).

Validates the statement emitters the generators grew for the DB-API
front door: every parameterized statement must (a) plan and run, (b)
agree row-for-row with its literal-inlined twin, and (c) produce the
*same recycler hits* as the twin — placeholders and inline literals are
instances of one template, so the pool cannot tell them apart.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.bench import fresh_tpch_db, run_batch_cursor
from repro.workloads.skyserver import (
    SkyQueryLog,
    build_sky_templates,
    load_skyserver,
)
from repro.workloads.tpch import (
    SQL_STATEMENTS,
    SQL_TEMPLATES,
    sql_instances,
    statement_params,
    ParamGenerator,
)

SF = 0.005


def inline_literals(sql: str, params: dict) -> str:
    """The literal-inlined twin of a ``:name`` statement."""
    out = sql
    # Longest names first so :date does not clobber :date_hi-style keys.
    for name in sorted(params, key=len, reverse=True):
        value = params[name]
        if isinstance(value, str):
            text = "'" + value.replace("'", "''") + "'"
        elif isinstance(value, np.datetime64):
            text = f"date '{value}'"
        else:
            text = repr(value)
        out = out.replace(f":{name}", text)
    return out


@pytest.fixture(scope="module")
def tpch():
    db = fresh_tpch_db(sf=SF)
    with repro.connect(database=db) as conn:
        yield conn


@pytest.mark.parametrize("name", SQL_TEMPLATES)
def test_statement_matches_inline_twin(tpch, name):
    pg = ParamGenerator(seed=5, sf=SF)
    params = statement_params(name, pg.params_for(name))
    sql = SQL_STATEMENTS[name]
    cur = tpch.cursor()
    cur.execute(sql, params)
    via_params = cur.fetchall()
    twin = tpch.database.execute(inline_literals(sql, params))
    assert cur.result.names == twin.value.names
    rows = twin.value.rows()
    assert len(via_params) == len(rows)
    for g, e in zip(via_params, rows):
        for gv, ev in zip(g, e):
            if isinstance(ev, float):
                if np.isnan(ev):
                    assert np.isnan(gv)
                else:
                    assert gv == pytest.approx(ev)
            else:
                assert gv == ev


def test_placeholder_hits_equal_inline_hits():
    """Acceptance: a parameterized stream earns exactly the hits its
    literal-inlined twin earns (fresh engines, same instances)."""
    pg = ParamGenerator(seed=9, sf=SF)
    draws = [pg.params_for("q06") for _ in range(6)]
    draws += draws[:3]                      # exact repeats too
    sql = SQL_STATEMENTS["q06"]
    instances = [statement_params("q06", d) for d in draws]

    db_param = fresh_tpch_db(sf=SF)
    cur = repro.connect(database=db_param).cursor()
    hits_param = [cur.execute(sql, p).stats.hits for p in instances]

    db_inline = fresh_tpch_db(sf=SF)
    hits_inline = [
        db_inline.execute(inline_literals(sql, p)).stats.hits
        for p in instances
    ]
    assert hits_param == hits_inline
    assert sum(hits_param) > 0


def test_sql_instances_compile_once_per_template(tpch):
    db = tpch.database
    before = db.compile_cache_stats
    batch = sql_instances(n_instances_each=4, seed=123, sf=SF)
    result = run_batch_cursor(tpch, [(s, p) for _n, s, p in batch])
    after = db.compile_cache_stats
    assert len(result.records) == 4 * len(SQL_TEMPLATES)
    # Already-prepared templates (from earlier tests in this module)
    # cost nothing; fresh ones compile exactly once each.
    assert after.misses - before.misses <= len(SQL_TEMPLATES)
    assert result.compile_hits >= len(result.records) - len(SQL_TEMPLATES)
    assert result.hit_ratio > 0             # recycler reuse across instances


class TestSkyServerStatements:
    @pytest.fixture(scope="class")
    def sky(self):
        db = repro.Database()
        load_skyserver(db, n_obj=20_000, seed=17)
        build_sky_templates(db)
        with repro.connect(database=db) as conn:
            yield conn

    def test_as_sql_matches_builder_template(self, sky):
        db = sky.database
        spec = db.catalog.table("elredshift").column_array("specobjid")
        log = SkyQueryLog(spec, seed=5)
        cur = sky.cursor()
        for qi in log.sample(40):
            via_template = db.run_template(qi.template, qi.params)
            sql, params = qi.as_sql()
            cur.execute(sql, params)
            assert cur.result.names == via_template.value.names
            assert cur.fetchall() == via_template.value.rows()

    def test_sample_sql_compiles_three_plans(self, sky):
        db = sky.database
        spec = db.catalog.table("elredshift").column_array("specobjid")
        log = SkyQueryLog(spec, seed=99)
        before = db.compile_cache_stats
        result = run_batch_cursor(sky, log.sample_sql(80))
        after = db.compile_cache_stats
        assert len(result.records) == 80
        # One plan per template class at most (earlier tests may have
        # compiled them already).
        assert after.misses - before.misses <= 3
        assert result.compile_hit_ratio > 0.9
