"""Template rendering, optimiser-interaction and plan-shape tests.

These pin down properties the recycler depends on structurally: stable
instruction pcs after optimisation, marking survival through dead-code
elimination, and the Figure 1-style plan listing.
"""

import numpy as np
import pytest

from repro import Database
from repro.mal.optimizer import optimize
@pytest.fixture
def db():
    d = Database()
    rng = np.random.default_rng(2)
    d.create_table(
        "orders", {"o_orderkey": "int64", "o_orderdate": "datetime64[D]"},
        {
            "o_orderkey": np.arange(100),
            "o_orderdate": np.datetime64("1996-01-01")
            + rng.integers(0, 300, 100).astype("timedelta64[D]"),
        },
    )
    d.create_table(
        "lineitem", {"l_orderkey": "int64", "l_returnflag": "U1"},
        {
            "l_orderkey": rng.integers(0, 100, 400),
            "l_returnflag": rng.choice(["R", "A", "N"], 400),
        },
    )
    d.add_foreign_key("fk", "lineitem", "l_orderkey",
                      "orders", "o_orderkey")
    return d


def paper_example_template(db):
    """The paper's running example (§2.2): count distinct orderkeys of
    'R'-flagged lineitems in a 3-month window."""
    q = db.builder("s1_2")
    a0 = q.param("date")
    a3 = q.param("flag")
    hi = q.scalar_op("mtime.addmonths", a0, 3)
    q.scan("lineitem")
    q.scan("orders")
    q.filter_eq("lineitem", "l_returnflag", a3)
    q.filter_range("orders", "o_orderdate", lo=a0, hi=hi, hi_incl=False)
    q.join("lineitem", "l_orderkey", "orders", "o_orderkey")
    okey = q.col("orders", "o_orderkey")
    n = q.agg_scalar("countdistinct", okey)
    q.select_scalar("L1", n)
    return q.build()


class TestPaperExample:
    def test_plan_uses_join_index(self, db):
        prog = paper_example_template(db)
        ops = [i.opname for i in prog.instrs]
        assert "sql.bindidx" in ops          # the li_fkey path of Fig 1
        assert "algebra.uselect" in ops      # l_returnflag = 'R'
        assert "algebra.select" in ops       # o_orderdate range

    def test_majority_of_instructions_marked(self, db):
        prog = paper_example_template(db)
        assert prog.n_marked / len(prog.instrs) > 0.5  # Fig 2 shading

    def test_correct_result(self, db):
        prog = paper_example_template(db)
        db.register_template(prog)
        r = db.run_template("s1_2", {"date": np.datetime64("1996-03-01"),
                                     "flag": "R"})
        o = db.catalog.table("orders")
        li = db.catalog.table("lineitem")
        dates = o.column_array("o_orderdate")
        in_window = (
            (dates >= np.datetime64("1996-03-01"))
            & (dates < np.datetime64("1996-06-01"))
        )
        ok = set(o.column_array("o_orderkey")[in_window].tolist())
        expected = len({
            k for k, f in zip(li.column_array("l_orderkey"),
                              li.column_array("l_returnflag"))
            if f == "R" and k in ok
        })
        assert r.value.scalar() == expected

    def test_parameter_dependence_split(self, db):
        """Dark vs light shading of Fig 2: flag-side instructions reuse
        across different date windows, date-side ones do not."""
        prog = paper_example_template(db)
        db.register_template(prog)
        db.run_template("s1_2", {"date": np.datetime64("1996-03-01"),
                                 "flag": "R"})
        r = db.run_template("s1_2", {"date": np.datetime64("1996-07-01"),
                                     "flag": "R"})
        assert 0 < r.stats.hits < r.stats.n_marked


class TestRenderAndPcs:
    def test_render_shows_params_and_marks(self, db):
        prog = paper_example_template(db)
        text = prog.render()
        assert "function s1_2(" in text
        assert "* " in text and " := " in text

    def test_pcs_stable_after_optimize(self, db):
        prog = paper_example_template(db)
        again = optimize(prog)
        assert [i.pc for i in again.instrs] == list(range(len(again.instrs)))

    def test_marking_survives_reoptimisation(self, db):
        prog = paper_example_template(db)
        marked_before = [i.opname for i in prog.instrs if i.recycle]
        again = optimize(prog)
        marked_after = [i.opname for i in again.instrs if i.recycle]
        assert marked_before == marked_after


class TestTemplateIdentityForCredits:
    def test_same_pc_same_key_across_invocations(self, db):
        from repro import CreditAdmission

        d = Database(admission=CreditAdmission(credits=1))
        d.create_table("t", {"x": "int64"}, {"x": np.arange(100)})
        q = d.builder("k")
        lo = q.param("lo")
        q.scan("t")
        q.filter_range("t", "x", lo=lo)
        q.select_scalar("n", q.agg_scalar("count"))
        d.register_template(q.build())
        d.run_template("k", {"lo": 1})
        d.run_template("k", {"lo": 2})   # same instruction key: no credit
        admissions = d.recycler.totals.admissions
        d.run_template("k", {"lo": 3})
        # With 1 credit and no reuse, later instances admit nothing new.
        assert d.recycler.totals.admissions == admissions
