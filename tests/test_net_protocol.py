"""Unit tests for the wire protocol: framing, tagging, typed errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    CatalogError,
    InterfaceError,
    OperationalError,
    ProgrammingError,
)
from repro.net.client import parse_url
from repro.net.protocol import (
    CODEC_JSON,
    MAX_FRAME_BYTES,
    ProtocolError,
    available_codecs,
    decode_payload,
    encode_frame,
    error_message,
    from_wire,
    raise_wire_error,
    split_header,
    to_wire,
)


class TestValueTagging:
    def test_scalars_pass_through(self):
        for v in (1, 1.5, "x", True, None):
            assert from_wire(to_wire(v)) == v

    def test_numpy_scalars_degrade_to_python(self):
        assert to_wire(np.int64(7)) == 7
        assert to_wire(np.float64(2.5)) == 2.5
        assert to_wire(np.str_("hi")) == "hi"
        assert to_wire(np.bool_(True)) is True

    def test_datetime64_roundtrip(self):
        d = np.datetime64("1998-12-01")
        out = from_wire(to_wire(d))
        assert isinstance(out, np.datetime64)
        assert out == d

    def test_bytes_roundtrip(self):
        assert from_wire(to_wire(b"\x00\xffbin")) == b"\x00\xffbin"

    def test_nested_structures(self):
        msg = {
            "params": {"date": np.datetime64("1995-03-15"),
                       "modes": ["MAIL", "SHIP"]},
            "rows": [[np.int64(1), 2.5], [np.int64(2), 3.5]],
        }
        out = from_wire(to_wire(msg))
        assert out["params"]["date"] == np.datetime64("1995-03-15")
        assert out["rows"][0] == [1, 2.5]

    def test_unencodable_type_raises(self):
        with pytest.raises(ProtocolError):
            to_wire(object())


class TestFraming:
    def test_roundtrip_json(self):
        frame = encode_frame({"type": "stats"})
        length = split_header(frame[:4])
        assert length == len(frame) - 4
        msg = decode_payload(frame[4], frame[5:])
        assert msg == {"type": "stats"}

    def test_roundtrip_msgpack_when_available(self):
        if "msgpack" not in available_codecs():
            pytest.skip("msgpack not installed")
        from repro.net.protocol import CODEC_MSGPACK

        frame = encode_frame({"type": "ok"}, CODEC_MSGPACK)
        assert decode_payload(frame[4], frame[5:]) == {"type": "ok"}

    def test_json_always_available(self):
        assert "json" in available_codecs()

    def test_oversized_frame_rejected_on_encode(self):
        big = {"type": "execute", "sql": "x" * 4096}
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(big, max_frame=1024)

    def test_oversized_length_prefix_rejected_before_read(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="refusing to read"):
            split_header(header)

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError):
            split_header((0).to_bytes(4, "big"))

    def test_unknown_codec_rejected(self):
        with pytest.raises(ProtocolError, match="codec"):
            decode_payload(42, b"{}")

    def test_garbage_payload_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_payload(CODEC_JSON, b"\x00\x01\x02 not json")

    def test_untyped_payload_rejected(self):
        with pytest.raises(ProtocolError, match="typed message"):
            decode_payload(CODEC_JSON, b'{"no_type": 1}')

    def test_unknown_message_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_payload(CODEC_JSON, b'{"type": "frobnicate"}')


class TestTypedErrors:
    def test_dbapi_class_name_travels(self):
        msg = error_message(ProgrammingError("bad sql"))
        assert msg["error"] == "ProgrammingError"
        with pytest.raises(ProgrammingError, match="bad sql"):
            raise_wire_error(msg)

    def test_engine_subclass_keeps_its_name(self):
        # CatalogError is in repro.errors and on the DB-API hierarchy,
        # so the precise class survives the wire.
        msg = error_message(CatalogError("no such table"))
        with pytest.raises(CatalogError):
            raise_wire_error(msg)

    def test_foreign_exception_degrades_to_operational(self):
        msg = error_message(ValueError("boom"))
        assert msg["error"] == "OperationalError"
        with pytest.raises(OperationalError, match="boom"):
            raise_wire_error(msg)

    def test_unknown_error_name_still_raises_dbapi(self):
        from repro.errors import DatabaseError

        with pytest.raises(DatabaseError):
            raise_wire_error({"type": "error", "error": "NoSuchClass",
                              "message": "x"})


class TestUrlParsing:
    def test_host_port(self):
        assert parse_url("repro://127.0.0.1:6414") == ("127.0.0.1", 6414)

    def test_default_port(self):
        from repro.net.protocol import DEFAULT_PORT

        assert parse_url("repro://dbhost") == ("dbhost", DEFAULT_PORT)

    def test_trailing_slash(self):
        assert parse_url("repro://h:1/") == ("h", 1)

    def test_bad_scheme_rejected(self):
        with pytest.raises(InterfaceError, match="bad connection url"):
            parse_url("postgres://h:5432")

    def test_garbage_rejected(self):
        with pytest.raises(InterfaceError):
            parse_url("repro://")
